//! The **iterated quorum-replacement gather** — the paper's §3 alternative
//! to Algorithm 3.
//!
//! The paper observes that the quorum-*consistency* property does make the
//! naive round structure of Algorithm 2 converge — just not in three rounds:
//! with `R` rounds of "collect sets from one of my quorums, union, forward",
//! any system with fewer than `2^(R-1)` processes reaches a common core, so
//! `log₂ n + 1` rounds always suffice. That logarithmic latency is exactly
//! what a DAG protocol cannot afford (every wave would stretch with `n`),
//! which motivates the constant-round Algorithm 3.
//!
//! This module implements the `R`-round protocol generically, so the
//! trade-off is measurable: on the Figure-1 system, `R = 3` fails
//! (Lemma 3.2) while `R = 4` already succeeds under the same adversary.

use asym_broadcast::{BcastMsg, BroadcastHub};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_sim::{Context, InFlight, Protocol, Scheduler, Step};

use crate::common::{merge_pairs, to_wire, ValueSet};

/// Wire messages of the iterated gather: the arb layer plus one
/// `DISTRIBUTE` message kind per round level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IteratedGatherMsg<V> {
    /// Asymmetric reliable broadcast layer for the initial values.
    Arb(BcastMsg<V>),
    /// Level-`k` set distribution (`k = 1` plays `DISTRIBUTE_S`'s role).
    Distribute {
        /// Round level of the carried set (1-based).
        level: u32,
        /// The sender's accumulated set at that level.
        pairs: Vec<(ProcessId, V)>,
    },
}

/// One process of the `R`-round iterated quorum-replacement gather.
///
/// With `rounds == 3` this is exactly Algorithm 2 (unsound on Figure 1);
/// with `rounds ≥ log₂ n + 1` the quorum-consistency argument guarantees a
/// common core at the cost of logarithmic latency.
#[derive(Clone, Debug)]
pub struct IteratedGather<V> {
    me: ProcessId,
    quorums: AsymQuorumSystem,
    rounds: u32,
    hub: BroadcastHub<V>,
    /// `sets[k]` = accumulated set at level `k` (0 = arb deliveries).
    sets: Vec<ValueSet<V>>,
    /// Senders whose level-`k` distribute messages were received.
    senders: Vec<ProcessSet>,
    /// Whether the level-`k` distribute message was sent.
    sent: Vec<bool>,
    delivered: bool,
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> IteratedGather<V> {
    /// Creates an `R`-round iterated gather process.
    ///
    /// # Panics
    ///
    /// Panics if `rounds < 2` (one collection plus one distribution is the
    /// minimum meaningful configuration).
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem, rounds: u32) -> Self {
        assert!(rounds >= 2, "iterated gather needs at least 2 rounds");
        IteratedGather {
            me,
            hub: BroadcastHub::new(me, quorums.clone()),
            quorums,
            rounds,
            sets: vec![ValueSet::new(); rounds as usize],
            senders: vec![ProcessSet::new(); rounds as usize],
            sent: vec![false; rounds as usize],
            delivered: false,
        }
    }

    /// Number of configured rounds.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The delivered final set, if the protocol finished.
    pub fn delivered_set(&self) -> Option<&ValueSet<V>> {
        self.delivered.then(|| self.sets.last().expect("rounds ≥ 2"))
    }

    fn advance(&mut self, ctx: &mut Context<'_, IteratedGatherMsg<V>, ValueSet<V>>) {
        // Level 1 fires on an arb-delivered quorum; level k ≥ 2 fires on a
        // quorum of level-(k−1) distribute messages.
        let r = self.rounds as usize;
        for k in 1..r {
            if self.sent[k] {
                continue;
            }
            let ready = if k == 1 {
                let support: ProcessSet = self.sets[0].keys().copied().collect();
                self.quorums.contains_quorum_for(self.me, &support)
            } else {
                self.quorums.contains_quorum_for(self.me, &self.senders[k - 1])
            };
            if ready {
                self.sent[k] = true;
                let payload = if k == 1 { &self.sets[0] } else { &self.sets[k - 1] };
                ctx.broadcast(IteratedGatherMsg::Distribute {
                    level: k as u32,
                    pairs: to_wire(payload),
                });
            }
        }
        // Delivery: a quorum of final-level distribute messages.
        if !self.delivered && self.quorums.contains_quorum_for(self.me, &self.senders[r - 1]) {
            self.delivered = true;
            ctx.output(self.sets[r - 1].clone());
        }
    }
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> Protocol for IteratedGather<V> {
    type Msg = IteratedGatherMsg<V>;
    type Input = V;
    type Output = ValueSet<V>;

    fn on_input(&mut self, value: V, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        for m in self.hub.broadcast(0, value) {
            ctx.broadcast(IteratedGatherMsg::Arb(m));
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            IteratedGatherMsg::Arb(inner) => {
                let (out, deliveries) = self.hub.on_message(from, inner);
                for m in out {
                    ctx.broadcast(IteratedGatherMsg::Arb(m));
                }
                for d in deliveries {
                    merge_pairs(&mut self.sets[0], &[(d.origin, d.value)]);
                }
            }
            IteratedGatherMsg::Distribute { level, pairs } => {
                let k = level as usize;
                if k >= 1 && k < self.rounds as usize && self.senders[k].insert(from) {
                    merge_pairs(&mut self.sets[k], &pairs);
                }
            }
        }
        self.advance(ctx);
    }
}

/// The Appendix-A adversary generalized to the iterated protocol: every
/// process hears each distribution level only from its designated quorum.
#[derive(Clone, Debug)]
pub struct IteratedLemma32Scheduler {
    quorum_of: Vec<ProcessSet>,
}

impl IteratedLemma32Scheduler {
    /// Creates the scheduler from the designated quorum of each process.
    pub fn new(quorum_of: Vec<ProcessSet>) -> Self {
        IteratedLemma32Scheduler { quorum_of }
    }
}

impl<V> Scheduler<IteratedGatherMsg<V>> for IteratedLemma32Scheduler {
    fn next(&mut self, pending: &[InFlight<IteratedGatherMsg<V>>], _now: Step) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                let q = &self.quorum_of[m.to.index()];
                match &m.msg {
                    IteratedGatherMsg::Arb(BcastMsg::Ready { origin, .. }) => q.contains(*origin),
                    IteratedGatherMsg::Arb(_) => true,
                    IteratedGatherMsg::Distribute { .. } => q.contains(m.from),
                }
            })
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::find_common_core;
    use asym_quorum::counterexample::{fig1_quorum_of, fig1_quorums, FIG1_N};
    use asym_quorum::topology;
    use asym_sim::Simulation;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Runs the R-round protocol on the Figure-1 system under the
    /// Appendix-A adversary; returns whether a common core was reached.
    fn fig1_with_rounds(rounds: u32) -> bool {
        let qs = fig1_quorums();
        let quorum_of: Vec<ProcessSet> = (0..FIG1_N).map(|i| fig1_quorum_of(pid(i))).collect();
        let procs: Vec<IteratedGather<u64>> =
            (0..FIG1_N).map(|i| IteratedGather::new(pid(i), qs.clone(), rounds)).collect();
        let mut sim = Simulation::new(procs, IteratedLemma32Scheduler::new(quorum_of));
        for i in 0..FIG1_N {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(200_000_000).quiescent);
        let outputs: Vec<ValueSet<u64>> = (0..FIG1_N)
            .map(|i| {
                let out = sim.outputs(pid(i));
                assert_eq!(out.len(), 1, "process {i} must deliver (rounds={rounds})");
                out[0].clone()
            })
            .collect();
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
        find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs).is_some()
    }

    #[test]
    fn three_rounds_fail_on_figure_1() {
        // rounds = 3 *is* Algorithm 2: Lemma 3.2 applies.
        assert!(!fig1_with_rounds(3));
    }

    #[test]
    fn four_rounds_succeed_on_figure_1() {
        // The dataflow analysis says the Figure-1 system converges at 4
        // rounds; the message-passing protocol agrees.
        assert!(fig1_with_rounds(4));
    }

    #[test]
    fn matches_dataflow_round_requirement() {
        use crate::dataflow;
        let quorum_of: Vec<ProcessSet> = (0..FIG1_N).map(|i| fig1_quorum_of(pid(i))).collect();
        let needed = dataflow::rounds_to_common_core(&quorum_of, 16).unwrap() as u32;
        assert!(!fig1_with_rounds(needed - 1));
        assert!(fig1_with_rounds(needed));
    }

    #[test]
    fn threshold_systems_work_with_three_rounds() {
        let t = topology::uniform_threshold(7, 2);
        let procs: Vec<IteratedGather<u64>> =
            (0..7).map(|i| IteratedGather::new(pid(i), t.quorums.clone(), 3)).collect();
        let mut sim = Simulation::new(procs, asym_sim::scheduler::Random::new(5));
        for i in 0..7 {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(100_000_000).quiescent);
        let outputs: Vec<ValueSet<u64>> = (0..7).map(|i| sim.outputs(pid(i))[0].clone()).collect();
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
        assert!(find_common_core(&t.quorums, &ProcessSet::full(7), &refs).is_some());
    }

    #[test]
    #[should_panic(expected = "at least 2 rounds")]
    fn rejects_degenerate_round_count() {
        let t = topology::uniform_threshold(4, 1);
        let _ = IteratedGather::<u64>::new(pid(0), t.quorums, 1);
    }
}
