//! High-level cluster harness: build a trust topology, pick an adversary,
//! inject a workload, run to quiescence, and get checked results back.
//!
//! This is the API the examples and experiment binaries drive; it glues the
//! substrate crates together so a downstream user never has to wire the
//! simulator by hand.

use asym_core::{AsymDagRider, Block, DagRider, OrderedVertex, RiderConfig, RiderMetrics};
use asym_quorum::{maximal_guild, topology::Topology, ProcessId, ProcessSet};
use asym_sim::{FaultMode, NetStats, Protocol, Simulation};

pub use asym_sim::Adversary;

/// Everything a finished cluster run reports.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Atomic-broadcast outputs, per process, in delivery order.
    pub outputs: Vec<Vec<OrderedVertex>>,
    /// Per-process protocol counters.
    pub metrics: Vec<RiderMetrics>,
    /// Network counters (message complexity).
    pub net: NetStats,
    /// Delivery steps executed.
    pub steps: u64,
    /// Final simulated clock (equals steps except under `Latency`).
    pub time: u64,
    /// Whether the run ended in quiescence (vs. budget exhaustion).
    pub quiescent: bool,
    /// The maximal guild of the configured failure set, if any.
    pub guild: Option<ProcessSet>,
}

impl ClusterReport {
    /// Asserts pairwise prefix consistency of the outputs of the given
    /// processes (the atomic-broadcast total-order property).
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if two sequences diverge.
    pub fn assert_total_order(&self, members: &ProcessSet) {
        for a in members {
            for b in members {
                let (oa, ob) = (&self.outputs[a.index()], &self.outputs[b.index()]);
                let common = oa.len().min(ob.len());
                for k in 0..common {
                    assert_eq!(
                        oa[k].id, ob[k].id,
                        "total order violated between {a} and {b} at position {k}"
                    );
                }
            }
        }
    }

    /// Transactions delivered by a process, in order.
    pub fn delivered_txs(&self, p: ProcessId) -> Vec<u64> {
        self.outputs[p.index()].iter().flat_map(|o| o.block.txs.clone()).collect()
    }

    /// Total committed transactions at the best-progressed process.
    pub fn max_txs_ordered(&self) -> u64 {
        self.metrics.iter().map(|m| m.txs_ordered).max().unwrap_or(0)
    }

    /// Average number of waves per direct commit across processes that
    /// attempted at least one wave — the Lemma 4.4 observable.
    pub fn waves_per_commit(&self) -> Option<f64> {
        let (attempted, committed): (u64, u64) = self
            .metrics
            .iter()
            .fold((0, 0), |(a, c), m| (a + m.waves_attempted, c + m.waves_committed));
        (committed > 0).then(|| attempted as f64 / committed as f64)
    }
}

/// Builder for one consensus execution over a trust topology.
///
/// # Examples
///
/// ```
/// use asym_dag_rider::{Adversary, Cluster};
/// use asym_quorum::{topology, ProcessSet};
///
/// let report = Cluster::new(topology::uniform_threshold(4, 1))
///     .adversary(Adversary::Random(7))
///     .waves(4)
///     .blocks_per_process(1)
///     .run_asymmetric();
/// assert!(report.quiescent);
/// report.assert_total_order(&ProcessSet::full(4));
/// ```
#[derive(Clone, Debug)]
pub struct Cluster {
    topology: Topology,
    adversary: Adversary,
    coin_seed: u64,
    waves: u64,
    crashed: ProcessSet,
    blocks_per_process: usize,
    txs_per_block: usize,
    kernel_amplification: bool,
    max_steps: u64,
}

impl Cluster {
    /// Starts a cluster description over a topology.
    pub fn new(topology: Topology) -> Self {
        Cluster {
            topology,
            adversary: Adversary::Random(1),
            coin_seed: 42,
            waves: 6,
            crashed: ProcessSet::new(),
            blocks_per_process: 1,
            txs_per_block: 4,
            kernel_amplification: true,
            max_steps: 500_000_000,
        }
    }

    /// Selects the delivery adversary (default: `Random(1)`).
    pub fn adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the shared coin seed (default 42).
    pub fn coin_seed(mut self, seed: u64) -> Self {
        self.coin_seed = seed;
        self
    }

    /// Bounds the execution to this many waves (default 6).
    pub fn waves(mut self, waves: u64) -> Self {
        self.waves = waves;
        self
    }

    /// Crashes the given processes from the start.
    pub fn crash<I: IntoIterator<Item = usize>>(mut self, ids: I) -> Self {
        self.crashed = ids.into_iter().collect();
        self
    }

    /// Number of blocks each correct process `aa-broadcast`s (default 1).
    pub fn blocks_per_process(mut self, blocks: usize) -> Self {
        self.blocks_per_process = blocks;
        self
    }

    /// Transactions per injected block (default 4).
    pub fn txs_per_block(mut self, txs: usize) -> Self {
        self.txs_per_block = txs;
        self
    }

    /// Toggles the CONFIRM-from-kernel amplification (ablation ABL).
    pub fn kernel_amplification(mut self, on: bool) -> Self {
        self.kernel_amplification = on;
        self
    }

    /// Overrides the delivery-step budget.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// The topology under test.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn config(&self) -> RiderConfig {
        RiderConfig {
            max_waves: self.waves,
            allow_empty_blocks: true,
            kernel_amplification: self.kernel_amplification,
            ..RiderConfig::default()
        }
    }

    fn run_generic<P>(&self, procs: Vec<P>) -> ClusterReport
    where
        P: Protocol<Input = Block, Output = OrderedVertex> + HasMetrics,
        P::Msg: Clone + core::fmt::Debug + 'static,
    {
        let n = procs.len();
        let mut sim = Simulation::new(procs, self.adversary.build::<P::Msg>());
        for c in &self.crashed {
            sim = sim.with_fault(c, FaultMode::CrashedFromStart);
        }
        let mut tx = 0u64;
        for b in 0..self.blocks_per_process {
            for i in 0..n {
                if self.crashed.contains(ProcessId::new(i)) {
                    continue;
                }
                let txs: Vec<u64> = (0..self.txs_per_block)
                    .map(|_| {
                        tx += 1;
                        tx
                    })
                    .collect();
                sim.input(ProcessId::new(i), Block::new(txs));
                let _ = b;
            }
        }
        let report = sim.run(self.max_steps);
        let outputs: Vec<Vec<OrderedVertex>> =
            (0..n).map(|i| sim.outputs(ProcessId::new(i)).to_vec()).collect();
        let metrics: Vec<RiderMetrics> =
            (0..n).map(|i| sim.process(ProcessId::new(i)).metrics()).collect();
        ClusterReport {
            outputs,
            metrics,
            net: sim.stats(),
            steps: report.steps,
            time: sim.now(),
            quiescent: report.quiescent,
            guild: maximal_guild(&self.topology.fail_prone, &self.topology.quorums, &self.crashed),
        }
    }

    /// Runs **asymmetric DAG-Rider** (Algorithms 4–6) on this cluster.
    pub fn run_asymmetric(&self) -> ClusterReport {
        let procs: Vec<AsymDagRider> = (0..self.topology.n())
            .map(|i| {
                AsymDagRider::new(
                    ProcessId::new(i),
                    self.topology.quorums.clone(),
                    self.coin_seed,
                    self.config(),
                )
            })
            .collect();
        self.run_generic(procs)
    }

    /// Runs the **symmetric DAG-Rider baseline** with threshold `f`
    /// (ignores the topology's quorums; uses `n − f` thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn run_baseline(&self, f: usize) -> ClusterReport {
        let n = self.topology.n();
        let procs: Vec<DagRider> = (0..n)
            .map(|i| DagRider::new(ProcessId::new(i), n, f, self.coin_seed, self.config()))
            .collect();
        self.run_generic(procs)
    }
}

/// Internal glue: both protocol variants expose their counters.
pub trait HasMetrics {
    /// The process's execution counters.
    fn metrics(&self) -> RiderMetrics;
}

impl HasMetrics for AsymDagRider {
    fn metrics(&self) -> RiderMetrics {
        AsymDagRider::metrics(self)
    }
}

impl HasMetrics for DagRider {
    fn metrics(&self) -> RiderMetrics {
        DagRider::metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    #[test]
    fn asymmetric_run_reports_consistent_numbers() {
        let report = Cluster::new(topology::uniform_threshold(4, 1))
            .adversary(Adversary::Random(3))
            .waves(4)
            .run_asymmetric();
        assert!(report.quiescent);
        assert_eq!(report.outputs.len(), 4);
        assert_eq!(report.guild, Some(ProcessSet::full(4)));
        report.assert_total_order(&ProcessSet::full(4));
        assert!(report.net.sent >= report.net.delivered);
        assert!(report.waves_per_commit().is_some());
    }

    #[test]
    fn baseline_runs_on_same_harness() {
        let report = Cluster::new(topology::uniform_threshold(4, 1))
            .adversary(Adversary::Fifo)
            .waves(4)
            .run_baseline(1);
        assert!(report.quiescent);
        report.assert_total_order(&ProcessSet::full(4));
    }

    #[test]
    fn crashes_shrink_the_guild() {
        let report =
            Cluster::new(topology::uniform_threshold(7, 2)).crash([5, 6]).waves(5).run_asymmetric();
        let guild = report.guild.clone().unwrap();
        assert_eq!(guild, ProcessSet::from_indices([0, 1, 2, 3, 4]));
        report.assert_total_order(&guild);
        for g in &guild {
            assert!(!report.outputs[g.index()].is_empty(), "{g} made no progress");
        }
    }

    #[test]
    fn latency_adversary_reports_simulated_time() {
        let report = Cluster::new(topology::uniform_threshold(4, 1))
            .adversary(Adversary::Latency { seed: 5, min: 10, max: 100 })
            .waves(3)
            .run_asymmetric();
        assert!(report.quiescent);
        assert!(report.time > report.steps, "latency model inflates the clock");
    }

    #[test]
    fn delivered_txs_contain_workload() {
        let report = Cluster::new(topology::uniform_threshold(4, 1))
            .blocks_per_process(2)
            .waves(8)
            .run_asymmetric();
        let txs = report.delivered_txs(ProcessId::new(0));
        // 4 processes × 2 blocks × 4 txs = 32 injected transactions.
        assert!(txs.len() >= 16, "most of the workload must be ordered, got {}", txs.len());
        assert!(report.max_txs_ordered() >= txs.len() as u64);
    }
}
