//! # asym-dag-rider
//!
//! A complete, executable reproduction of *"DAG-based Consensus with
//! Asymmetric Trust"* (Ignacio Amores-Sesar, Christian Cachin, Juan
//! Villacis, Luca Zanolini — PODC 2025, arXiv:2505.17891), built as a Rust
//! workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`quorum`] | symmetric & asymmetric Byzantine quorum systems, B³, guilds, the Figure-1 counterexample, topology generators |
//! | [`sim`] | deterministic discrete-event simulator with adversarial schedulers and fault injection |
//! | [`crypto`] | from-scratch SHA-256, digests, the simulated common coin |
//! | [`broadcast`] | Bracha / asymmetric reliable broadcast, consistent broadcast |
//! | [`gather`] | Algorithms 1–3: symmetric gather, the failing quorum-replacement attempt, the constant-round asymmetric gather |
//! | [`dag`] | certified-DAG substrate: vertices, store, reachability, waves |
//! | [`storage`] | persistent DAG event log: checksummed WAL, snapshots, in-memory & file backends, crash-recovery replay |
//! | [`core`] | DAG-Rider (baseline) and asymmetric DAG-Rider (Algorithms 4–6), with WAL-backed crash recovery |
//!
//! This umbrella crate re-exports everything and adds the [`Cluster`]
//! harness used by the examples, integration tests and experiment binaries.
//!
//! ## Quick start
//!
//! ```
//! use asym_dag_rider::{Adversary, Cluster};
//! use asym_quorum::{topology, ProcessSet};
//!
//! // A 7-process Ripple-style trust topology (overlapping UNLs).
//! let t = topology::ripple_unl(7, 6, 1);
//! assert!(t.fail_prone.satisfies_b3());
//!
//! let report = Cluster::new(t)
//!     .adversary(Adversary::Random(99))
//!     .waves(4)
//!     .run_asymmetric();
//!
//! assert!(report.quiescent);
//! report.assert_total_order(&ProcessSet::full(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;

pub use cluster::{Adversary, Cluster, ClusterReport, HasMetrics};

pub use asym_broadcast as broadcast;
pub use asym_core as core;
pub use asym_crypto as crypto;
pub use asym_dag as dag;
pub use asym_gather as gather;
pub use asym_quorum as quorum;
pub use asym_sim as sim;
pub use asym_storage as storage;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use asym_core::{
        AsymDagRider, Block, DagLog, DagRider, OrderedVertex, RiderConfig, RiderMetrics,
    };
    pub use asym_quorum::{
        maximal_guild, topology, AsymFailProneSystem, AsymQuorumSystem, FailProneSystem, ProcessId,
        ProcessSet, QuorumSystem,
    };
    pub use asym_sim::{scheduler, FaultMode, Simulation};
    pub use asym_storage::{MemStorage, Storage, StorageBackend};

    pub use crate::cluster::{Adversary, Cluster, ClusterReport};
}
